// Package obs is the serving stack's flight recorder: dependency-free
// metrics primitives (atomic counters, lazily sampled gauges, fixed-bucket
// latency histograms), a Registry that exposes them in the Prometheus text
// exposition format, and a zero-alloc per-query phase tracer (trace.go).
//
// Design constraints, in order:
//
//   - The hot path must stay hot. Counter.Add and Histogram.Observe are a
//     single atomic add (plus a branch-free bucket search); resolving a
//     labeled series (Vec.With) costs one read-locked map lookup and is
//     meant to be done once per request, not per operation. The tracer is
//     nil-safe like metrics.Stats: an untraced query pays only nil checks.
//   - No dependencies. The Prometheus client library is a heavyweight
//     import for what is, on the exposition side, a line protocol; this
//     package writes it directly and a conformance test in internal/server
//     parses every emitted line back.
//   - Scrape-time sampling over push. Gauges for index shape (frozen
//     bytes, delta docs, WAL footprint) are callbacks evaluated per
//     scrape, so the write path never updates a mirror of state it
//     already owns.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone; this is not
// checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a fixed-bucket histogram of float64 observations (by
// convention: seconds). Buckets are cumulative at exposition time but
// stored per-interval, so Observe is one atomic add after a short search
// over the (log-spaced, typically <=20) bounds. The zero value is not
// usable; histograms are created by Registry.HistogramVec.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	counts  []atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the observation sum
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one observation. Lock-free: a bucket increment plus a
// CAS loop on the sum (uncontended in practice — scrapes read, only
// observers write).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: le is inclusive
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ExpBuckets returns n log-spaced upper bounds starting at start and
// multiplying by factor — the standard shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LatencyBuckets covers 100µs..~26s in half-decade steps — request
// latencies. PhaseBuckets covers 1µs..~4s — per-phase query timings.
var (
	LatencyBuckets = ExpBuckets(100e-6, 2.5, 14)
	PhaseBuckets   = ExpBuckets(1e-6, 4, 12)
)

// family is one exposition family: a name, HELP/TYPE metadata, and either
// eagerly updated series (counters/histograms) or a scrape-time callback.
type family struct {
	name       string
	help       string
	typ        string // "counter", "gauge", "histogram"
	labelNames []string
	bounds     []float64 // histogram families only

	mu     sync.RWMutex
	keys   []string // series insertion order
	series map[string]*series

	collect CollectFn // lazy families; nil for eager ones
}

type series struct {
	labelVals []string
	c         *Counter
	h         *Histogram
}

// CollectFn emits a lazy family's series at scrape time: call emit once
// per series with the label values (matching the registered label names)
// and the current value.
type CollectFn func(emit func(labelVals []string, v float64))

// Registry holds metric families and writes them in the Prometheus text
// exposition format. All methods are safe for concurrent use; families
// are typically registered at construction and only read (scraped or
// updated) afterwards.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func (r *Registry) add(f *family) *family {
	if !nameRe.MatchString(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labelNames {
		if !labelRe.MatchString(l) {
			panic(fmt.Sprintf("obs: invalid label name %q", l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric family %q", f.name))
	}
	f.series = map[string]*series{}
	r.fams[f.name] = f
	return f
}

// CounterVec registers a counter family with the given label dimensions
// (none for a single-series counter).
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.add(&family{name: name, help: help, typ: "counter", labelNames: labelNames})}
}

// Counter registers and returns a single unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// HistogramVec registers a histogram family with the given bucket bounds
// and label dimensions.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	if len(bounds) == 0 || !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q needs ascending bucket bounds", name))
	}
	b := append([]float64(nil), bounds...)
	return &HistogramVec{r.add(&family{name: name, help: help, typ: "histogram", labelNames: labelNames, bounds: b})}
}

// GaugeFunc registers a gauge whose value is sampled at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.add(&family{name: name, help: help, typ: "gauge",
		collect: func(emit func([]string, float64)) { emit(nil, f()) }})
}

// CounterFunc registers a counter whose value is sampled at scrape time —
// for counts owned elsewhere (server atomics, compaction tallies) that
// must not be double-maintained.
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	r.add(&family{name: name, help: help, typ: "counter",
		collect: func(emit func([]string, float64)) { emit(nil, f()) }})
}

// Collect registers a lazy family whose series (label values and values)
// are produced by f at scrape time. typ is "counter" or "gauge".
func (r *Registry) Collect(name, help, typ string, labelNames []string, f CollectFn) {
	if typ != "counter" && typ != "gauge" {
		panic(fmt.Sprintf("obs: lazy family %q must be counter or gauge, not %q", name, typ))
	}
	r.add(&family{name: name, help: help, typ: typ, labelNames: labelNames, collect: f})
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the counter for the given label values (created on first
// use). The result should be cached by hot-path callers; With itself is a
// read-locked map lookup.
func (v *CounterVec) With(labelVals ...string) *Counter {
	s := v.f.with(labelVals)
	return s.c
}

// With returns the histogram for the given label values (created on
// first use).
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	s := v.f.with(labelVals)
	return s.h
}

func (f *family) with(labelVals []string) *series {
	if len(labelVals) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", f.name, len(f.labelNames), len(labelVals)))
	}
	key := strings.Join(labelVals, "\xff")
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labelVals: append([]string(nil), labelVals...)}
	if f.typ == "histogram" {
		s.h = newHistogram(f.bounds)
	} else {
		s.c = &Counter{}
	}
	f.series[key] = s
	f.keys = append(f.keys, key)
	return s
}
