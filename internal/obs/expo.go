package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteTo renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, each
// preceded by its # HELP and # TYPE lines, histograms expanded into
// cumulative _bucket/_sum/_count series.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	cw := &countingWriter{w: bufio.NewWriter(w)}
	for _, f := range fams {
		f.write(cw)
		if cw.err != nil {
			return cw.n, cw.err
		}
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Handler returns an http.Handler serving the exposition — the body of
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) WriteString(s string) {
	if cw.err != nil {
		return
	}
	n, err := io.WriteString(cw.w, s)
	cw.n += int64(n)
	cw.err = err
}

func (f *family) write(cw *countingWriter) {
	cw.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
	cw.WriteString("# TYPE " + f.name + " " + f.typ + "\n")
	if f.collect != nil {
		f.collect(func(labelVals []string, v float64) {
			cw.WriteString(f.name + labelString(f.labelNames, labelVals, "", "") + " " + formatFloat(v) + "\n")
		})
		return
	}
	f.mu.RLock()
	sers := make([]*series, 0, len(f.keys))
	for _, k := range f.keys {
		sers = append(sers, f.series[k])
	}
	f.mu.RUnlock()
	for _, s := range sers {
		if s.h != nil {
			f.writeHistogram(cw, s)
			continue
		}
		cw.WriteString(f.name + labelString(f.labelNames, s.labelVals, "", "") + " " + strconv.FormatInt(s.c.Value(), 10) + "\n")
	}
}

func (f *family) writeHistogram(cw *countingWriter, s *series) {
	var cum int64
	for i, b := range s.h.bounds {
		cum += s.h.counts[i].Load()
		cw.WriteString(f.name + "_bucket" + labelString(f.labelNames, s.labelVals, "le", formatFloat(b)) +
			" " + strconv.FormatInt(cum, 10) + "\n")
	}
	cum += s.h.counts[len(s.h.bounds)].Load()
	cw.WriteString(f.name + "_bucket" + labelString(f.labelNames, s.labelVals, "le", "+Inf") +
		" " + strconv.FormatInt(cum, 10) + "\n")
	cw.WriteString(f.name + "_sum" + labelString(f.labelNames, s.labelVals, "", "") + " " + formatFloat(s.h.Sum()) + "\n")
	cw.WriteString(f.name + "_count" + labelString(f.labelNames, s.labelVals, "", "") + " " + strconv.FormatInt(cum, 10) + "\n")
}

// labelString renders {a="x",b="y"} (or "" when there are no labels),
// with an optional extra label appended (the histogram le).
func labelString(names, vals []string, extraName, extraVal string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
