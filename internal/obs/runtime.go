package obs

import (
	"math"
	"runtime/metrics"
)

// runtimeSamples are the runtime/metrics series the flight recorder
// exposes. Sampled per scrape — the runtime maintains these for free.
var runtimeSamples = []struct {
	name   string // runtime/metrics name
	metric string // exposition name
	help   string
	typ    string
}{
	{"/sched/goroutines:goroutines", "go_goroutines", "Number of live goroutines.", "gauge"},
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes", "Bytes occupied by live heap objects plus not-yet-swept dead objects.", "gauge"},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", "Completed GC cycles since program start.", "counter"},
	{"/sched/pauses/total/gc:seconds", "go_gc_pause_seconds_total", "Approximate total stop-the-world GC pause time (histogram bucket midpoints).", "counter"},
}

// RegisterRuntime registers Go runtime gauges and counters (goroutines,
// heap bytes, GC cycles and pause time) on r, sampled at scrape time via
// runtime/metrics.
func RegisterRuntime(r *Registry) {
	for _, rs := range runtimeSamples {
		rs := rs
		sample := func() float64 {
			s := []metrics.Sample{{Name: rs.name}}
			metrics.Read(s)
			switch s[0].Value.Kind() {
			case metrics.KindUint64:
				return float64(s[0].Value.Uint64())
			case metrics.KindFloat64:
				return s[0].Value.Float64()
			case metrics.KindFloat64Histogram:
				return histogramApproxSum(s[0].Value.Float64Histogram())
			default:
				return 0
			}
		}
		if rs.typ == "counter" {
			r.CounterFunc(rs.metric, rs.help, sample)
		} else {
			r.GaugeFunc(rs.metric, rs.help, sample)
		}
	}
}

// histogramApproxSum approximates the sum of observations in a
// runtime/metrics histogram by weighting bucket counts with bucket
// midpoints. Unbounded edge buckets fall back to their finite edge.
func histogramApproxSum(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var sum float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		var mid float64
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			mid = 0
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		default:
			mid = (lo + hi) / 2
		}
		sum += mid * float64(n)
	}
	return sum
}
