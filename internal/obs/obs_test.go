package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	// le is inclusive: 0.5 and 1 land in le=1; 1.5 and 10 in le=10;
	// 99 and 100 in le=100; 101 and 1e9 in +Inf.
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 8 {
		t.Errorf("Count() = %d, want 8", got)
	}
	wantSum := 0.5 + 1 + 1.5 + 10 + 99 + 100 + 101 + 1e9
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("Sum() = %g, want %g", got, wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(ExpBuckets(1e-6, 4, 12))
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1e-5)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count() = %d, want %d", got, goroutines*per)
	}
	if got, want := h.Sum(), float64(goroutines*per)*1e-5; math.Abs(got-want) > want*1e-9 {
		t.Fatalf("Sum() = %g, want %g", got, want)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
	for _, fn := range []func(){
		func() { ExpBuckets(0, 2, 3) },
		func() { ExpBuckets(1, 1, 3) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("ExpBuckets with bad args did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_name_total", "fine")
	for name, fn := range map[string]func(){
		"bad metric name": func() { r.Counter("bad-name", "x") },
		"bad label name":  func() { r.CounterVec("ok2_total", "x", "bad-label") },
		"duplicate":       func() { r.Counter("ok_name_total", "again") },
		"bad hist bounds": func() { r.HistogramVec("h_x", "x", []float64{2, 1}) },
		"bad lazy type":   func() { r.Collect("lazy_x", "x", "histogram", nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestVecSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "route", "status")
	a := v.With("/v1/search", "200")
	b := v.With("/v1/search", "200")
	if a != b {
		t.Fatal("same label values returned distinct series")
	}
	c := v.With("/v1/search", "400")
	if a == c {
		t.Fatal("different label values returned the same series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("label arity mismatch did not panic")
		}
	}()
	v.With("/v1/search")
}

func TestWriteToBasic(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a\nwith newline").Add(3)
	v := r.CounterVec("b_total", `counts b with \ and "`, "kind")
	v.With(`x"y\z`).Add(1)
	r.GaugeFunc("g", "a gauge", func() float64 { return 2.5 })
	h := r.HistogramVec("lat_seconds", "latency", []float64{0.1, 1}).With()
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	n, err := r.WriteTo(&sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n != int64(len(out)) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, len(out))
	}
	for _, want := range []string{
		"# HELP a_total counts a\\nwith newline\n",
		"# TYPE a_total counter\n",
		"a_total 3\n",
		`b_total{kind="x\"y\\z"} 1` + "\n",
		"# TYPE g gauge\n",
		"g 2.5\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 1` + "\n",
		`lat_seconds_bucket{le="1"} 2` + "\n",
		`lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"lat_seconds_sum 5.55\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
	// Families must be sorted by name.
	if strings.Index(out, "# HELP a_total") > strings.Index(out, "# HELP b_total") {
		t.Error("families not sorted by name")
	}
}

func TestRegisterRuntime(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"go_goroutines", "go_heap_objects_bytes", "go_gc_cycles_total", "go_gc_pause_seconds_total"} {
		if !strings.Contains(out, "\n"+name+" ") && !strings.HasPrefix(out, name+" ") {
			t.Errorf("runtime exposition missing series %q", name)
		}
	}
}

func TestTraceNesting(t *testing.T) {
	tr := &QueryTrace{}
	tr.Begin(PhaseProbe)
	time.Sleep(2 * time.Millisecond)
	tr.Begin(PhaseVerify) // pauses probe
	time.Sleep(2 * time.Millisecond)
	tr.End(PhaseVerify) // resumes probe
	time.Sleep(2 * time.Millisecond)
	tr.End(PhaseProbe)

	probe, verify := tr.Phase(PhaseProbe), tr.Phase(PhaseVerify)
	if probe.Nanos <= 0 || verify.Nanos <= 0 {
		t.Fatalf("phases not recorded: probe=%d verify=%d", probe.Nanos, verify.Nanos)
	}
	// Exclusive times: probe ~4ms, verify ~2ms; probe must exceed verify.
	if probe.Nanos <= verify.Nanos {
		t.Errorf("probe (%d ns) should exceed verify (%d ns): child time leaked into parent", probe.Nanos, verify.Nanos)
	}
	if got := tr.TotalNanos(); got != probe.Nanos+verify.Nanos {
		t.Errorf("TotalNanos() = %d, want %d", got, probe.Nanos+verify.Nanos)
	}
}

func TestTraceMergeAndReset(t *testing.T) {
	a, b := &QueryTrace{}, &QueryTrace{}
	a.AddCount(PhaseDedup, 3)
	a.phases[PhaseDedup].Nanos = 100
	b.AddCount(PhaseDedup, 4)
	b.phases[PhaseDedup].Nanos = 50
	a.Merge(b)
	if got := a.Phase(PhaseDedup); got.Count != 7 || got.Nanos != 150 {
		t.Fatalf("merged dedup = %+v, want {150 7}", got)
	}
	a.Reset()
	if got := a.Phase(PhaseDedup); got != (PhaseStat{}) {
		t.Fatalf("after Reset, dedup = %+v", got)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *QueryTrace
	tr.Begin(PhaseSelect)
	tr.AddCount(PhaseSelect, 5)
	tr.End(PhaseSelect)
	tr.Merge(&QueryTrace{})
	tr.Reset()
	if tr.TotalNanos() != 0 || tr.Phase(PhaseSelect) != (PhaseStat{}) {
		t.Fatal("nil trace returned nonzero stats")
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Begin(PhaseProbe)
		tr.AddCount(PhaseProbe, 1)
		tr.End(PhaseProbe)
	})
	if allocs != 0 {
		t.Fatalf("nil-trace ops allocate: %v allocs/op", allocs)
	}
}

func TestTraceZeroAlloc(t *testing.T) {
	tr := &QueryTrace{}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Begin(PhaseProbe)
		tr.Begin(PhaseDedup)
		tr.AddCount(PhaseDedup, 1)
		tr.End(PhaseDedup)
		tr.End(PhaseProbe)
	})
	if allocs != 0 {
		t.Fatalf("active trace ops allocate: %v allocs/op", allocs)
	}
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		PhaseSelect: "selection", PhaseProbe: "probe",
		PhaseDedup: "dedup", PhaseVerify: "verify",
		NumPhases: "unknown",
	}
	for p, w := range want {
		if got := p.String(); got != w {
			t.Errorf("Phase(%d).String() = %q, want %q", p, got, w)
		}
	}
}
