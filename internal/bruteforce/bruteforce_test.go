package bruteforce

import (
	"testing"

	"passjoin/internal/verify"
)

func TestSelfJoinTiny(t *testing.T) {
	strs := []string{"abc", "abd", "xyz", "abcd"}
	got := SelfJoin(strs, 1)
	want := map[Pair]bool{
		{0, 1}: true, // abc ~ abd
		{0, 3}: true, // abc ~ abcd
		{1, 3}: true, // abd ~ abcd (insert c)
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for _, p := range got {
		if !want[p] {
			t.Errorf("unexpected pair %v", p)
		}
		if p.R >= p.S {
			t.Errorf("pair not normalized: %v", p)
		}
	}
}

func TestSelfJoinExhaustive(t *testing.T) {
	strs := []string{"", "a", "ab", "ba", "abc"}
	for tau := 0; tau <= 3; tau++ {
		got := SelfJoin(strs, tau)
		count := 0
		for i := range strs {
			for j := i + 1; j < len(strs); j++ {
				if verify.EditDistance(strs[i], strs[j]) <= tau {
					count++
				}
			}
		}
		if len(got) != count {
			t.Errorf("tau=%d: %d pairs, want %d", tau, len(got), count)
		}
	}
}

func TestJoinCross(t *testing.T) {
	r := []string{"vldb", "icde"}
	s := []string{"pvldb", "icdm", "edbt"}
	got := Join(r, s, 1)
	want := map[Pair]bool{
		{0, 0}: true, // vldb ~ pvldb
		{1, 1}: true, // icde ~ icdm
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for _, p := range got {
		if !want[p] {
			t.Errorf("unexpected %v", p)
		}
	}
}

func TestJoinEmptySides(t *testing.T) {
	if got := Join(nil, []string{"a"}, 2); len(got) != 0 {
		t.Error("empty R should yield nothing")
	}
	if got := Join([]string{"a"}, nil, 2); len(got) != 0 {
		t.Error("empty S should yield nothing")
	}
	if got := SelfJoin(nil, 2); len(got) != 0 {
		t.Error("empty self join")
	}
}

func TestLengthFilterApplied(t *testing.T) {
	// Pairs with |len diff| > tau must be skipped without verification.
	strs := []string{"a", "abcdefgh"}
	if got := SelfJoin(strs, 3); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}
