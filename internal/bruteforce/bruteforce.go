// Package bruteforce provides the O(n²) reference similarity join used as
// ground truth by tests and as a sanity baseline in small benchmarks. It
// applies only the trivial length filter before running the banded
// edit-distance verifier on every surviving pair.
package bruteforce

import (
	"passjoin/internal/verify"
)

// Pair mirrors core.Pair without importing it (both are plain index pairs).
type Pair struct{ R, S int32 }

// SelfJoin returns every unordered pair (i, j), i < j, with
// ed(strs[i], strs[j]) <= tau. Pairs are reported with the smaller original
// index first; order of the result slice is unspecified.
func SelfJoin(strs []string, tau int) []Pair {
	var out []Pair
	var v verify.Verifier
	for i := 0; i < len(strs); i++ {
		for j := i + 1; j < len(strs); j++ {
			a, b := strs[i], strs[j]
			if diff(len(a), len(b)) > tau {
				continue
			}
			if v.Dist(a, b, tau) <= tau {
				out = append(out, Pair{int32(i), int32(j)})
			}
		}
	}
	return out
}

// Join returns every pair (i, j) with ed(rset[i], sset[j]) <= tau.
func Join(rset, sset []string, tau int) []Pair {
	var out []Pair
	var v verify.Verifier
	for i := 0; i < len(rset); i++ {
		for j := 0; j < len(sset); j++ {
			a, b := rset[i], sset[j]
			if diff(len(a), len(b)) > tau {
				continue
			}
			if v.Dist(a, b, tau) <= tau {
				out = append(out, Pair{int32(i), int32(j)})
			}
		}
	}
	return out
}

func diff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}
