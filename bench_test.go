// Benchmark harness: one testing.B family per table and figure of the
// Pass-Join paper's evaluation (§6). The cmd/experiments tool prints the
// same series at larger scales; these benchmarks are the CI-sized
// regenerators. Absolute numbers are machine-dependent; the paper's shapes
// (orderings between methods, growth rates) are what matters and hold at
// this scale.
//
//	go test -bench=. -benchmem
package passjoin_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"passjoin"
	"passjoin/internal/core"
	"passjoin/internal/dataset"
	"passjoin/internal/edjoin"
	"passjoin/internal/ngpp"
	"passjoin/internal/partenum"
	"passjoin/internal/selection"
	"passjoin/internal/triejoin"
	"passjoin/internal/verify"
)

// Benchmark corpora (cached): small-scale stand-ins for Table 2's datasets.
var (
	benchOnce    sync.Once
	benchCorpora map[string][]string
)

type benchSpec struct {
	name string
	taus []int
	edq  int
}

var benchSpecs = []benchSpec{
	{name: "author", taus: []int{1, 2, 3, 4}, edq: 2},
	{name: "querylog", taus: []int{4, 6, 8}, edq: 3},
	{name: "authortitle", taus: []int{5, 8, 10}, edq: 4},
}

func corpora(b *testing.B) map[string][]string {
	b.Helper()
	benchOnce.Do(func() {
		benchCorpora = map[string][]string{}
		sizes := map[string]int{"author": 2000, "querylog": 800, "authortitle": 500}
		for name, n := range sizes {
			strs, err := dataset.ByName(name, n, 1)
			if err != nil {
				panic(err)
			}
			benchCorpora[name] = strs
		}
	})
	return benchCorpora
}

// BenchmarkTable2Datasets regenerates Table 2: corpus synthesis plus the
// cardinality / length statistics.
func BenchmarkTable2Datasets(b *testing.B) {
	for _, spec := range benchSpecs {
		b.Run(spec.name, func(b *testing.B) {
			var s dataset.Summary
			for i := 0; i < b.N; i++ {
				strs, err := dataset.ByName(spec.name, 1000, 1)
				if err != nil {
					b.Fatal(err)
				}
				s = dataset.Summarize(strs)
			}
			b.ReportMetric(s.AvgLen, "avgLen")
			b.ReportMetric(float64(s.MaxLen), "maxLen")
		})
	}
}

// BenchmarkFig11Histogram regenerates Figure 11's length distributions.
func BenchmarkFig11Histogram(b *testing.B) {
	cs := corpora(b)
	for _, spec := range benchSpecs {
		strs := cs[spec.name]
		b.Run(spec.name, func(b *testing.B) {
			bins := 0
			for i := 0; i < b.N; i++ {
				bins = len(dataset.LengthHistogram(strs, 2))
			}
			b.ReportMetric(float64(bins), "bins")
		})
	}
}

// BenchmarkFig12Fig13Selection regenerates Figures 12 and 13 together:
// ns/op is Figure 13's generation time, the "substrings" metric is
// Figure 12's count.
func BenchmarkFig12Fig13Selection(b *testing.B) {
	cs := corpora(b)
	for _, spec := range benchSpecs {
		strs := cs[spec.name]
		for _, tau := range spec.taus {
			for _, m := range selection.Methods {
				b.Run(fmt.Sprintf("%s/tau=%d/%v", spec.name, tau, m), func(b *testing.B) {
					var count int64
					for i := 0; i < b.N; i++ {
						count, _ = core.SelectionScan(strs, tau, m)
					}
					b.ReportMetric(float64(count), "substrings")
				})
			}
		}
	}
}

// BenchmarkFig14Verification regenerates Figure 14: the self join under
// each verification method (selection fixed to multi-match).
func BenchmarkFig14Verification(b *testing.B) {
	cs := corpora(b)
	for _, spec := range benchSpecs {
		strs := cs[spec.name]
		tau := spec.taus[len(spec.taus)-1]
		for _, vk := range core.VerifyKinds {
			b.Run(fmt.Sprintf("%s/tau=%d/%v", spec.name, tau, vk), func(b *testing.B) {
				var n int
				for i := 0; i < b.N; i++ {
					pairs, err := core.SelfJoin(strs, core.Options{Tau: tau, Verification: vk})
					if err != nil {
						b.Fatal(err)
					}
					n = len(pairs)
				}
				b.ReportMetric(float64(n), "pairs")
			})
		}
	}
}

// BenchmarkFig15Compare regenerates Figure 15: Pass-Join vs ED-Join vs
// Trie-Join total time (indexing + join).
func BenchmarkFig15Compare(b *testing.B) {
	cs := corpora(b)
	for _, spec := range benchSpecs {
		strs := cs[spec.name]
		taus := []int{spec.taus[0], spec.taus[len(spec.taus)-1]}
		for _, tau := range taus {
			b.Run(fmt.Sprintf("%s/tau=%d/PassJoin", spec.name, tau), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.SelfJoin(strs, core.Options{Tau: tau}); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/tau=%d/EdJoin", spec.name, tau), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := edjoin.Join(strs, tau, spec.edq, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/tau=%d/TrieJoin", spec.name, tau), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := triejoin.Join(strs, tau, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig16Scalability regenerates Figure 16: join time as the
// dataset grows.
func BenchmarkFig16Scalability(b *testing.B) {
	cs := corpora(b)
	strs := cs["author"]
	for _, frac := range []int{2, 4, 6} {
		n := len(strs) * frac / 6
		for _, tau := range []int{2, 4} {
			b.Run(fmt.Sprintf("author/n=%d/tau=%d", n, tau), func(b *testing.B) {
				sub := strs[:n]
				for i := 0; i < b.N; i++ {
					if _, err := core.SelfJoin(sub, core.Options{Tau: tau}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable3IndexSizes regenerates Table 3: index footprints, reported
// as bytes metrics.
func BenchmarkTable3IndexSizes(b *testing.B) {
	cs := corpora(b)
	for _, spec := range benchSpecs {
		strs := cs[spec.name]
		b.Run(spec.name+"/PassJoin", func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				bytes, _ = core.IndexFootprint(strs, 4)
			}
			b.ReportMetric(float64(bytes), "indexBytes")
		})
		b.Run(spec.name+"/EdJoin", func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				bytes, _ = edjoin.IndexFootprint(strs, 4, 4)
			}
			b.ReportMetric(float64(bytes), "indexBytes")
		})
		b.Run(spec.name+"/TrieJoin", func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				bytes, _ = triejoin.IndexFootprint(strs)
			}
			b.ReportMetric(float64(bytes), "indexBytes")
		})
	}
}

// BenchmarkAblationSelectionMatrix measures every selection × verification
// combination (extension beyond the paper's one-dimension-at-a-time plots).
func BenchmarkAblationSelectionMatrix(b *testing.B) {
	cs := corpora(b)
	strs := cs["author"]
	for _, sel := range selection.Methods {
		for _, vk := range core.VerifyKinds {
			b.Run(fmt.Sprintf("%v/%v", sel, vk), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.SelfJoin(strs, core.Options{Tau: 2, Selection: sel, Verification: vk}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationBaselines measures the secondary baselines All-Pairs-Ed
// and Part-Enum against Pass-Join.
func BenchmarkAblationBaselines(b *testing.B) {
	cs := corpora(b)
	strs := cs["author"]
	tau := 2
	b.Run("AllPairsEd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := edjoin.JoinConfig(strs, tau, edjoin.Config{Q: 2}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PartEnum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := partenum.Join(strs, tau, 2, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NGPP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ngpp.Join(strs, tau, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TrieSearch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := triejoin.JoinSearch(strs, tau, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PassJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SelfJoin(strs, core.Options{Tau: tau}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationParallel measures the index-once/probe-parallel mode.
func BenchmarkAblationParallel(b *testing.B) {
	cs := corpora(b)
	strs := cs["author"]
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SelfJoin(strs, core.Options{Tau: 3, Parallel: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamJoinParallel measures the streaming join engine behind
// SelfJoinEachCtx / the /v1/join endpoints: index once, fan the probe
// pass out over N workers, deliver pairs through a bounded channel
// without materializing the result set. Compare against the sequential
// stream (workers=1) for scaling and against BenchmarkAblationParallel
// (which materializes and sorts) for the streaming overhead; ns/pair is
// reported per emitted pair.
func BenchmarkStreamJoinParallel(b *testing.B) {
	cs := corpora(b)
	strs := cs["author"]
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var pairs int64
			for i := 0; i < b.N; i++ {
				err := passjoin.SelfJoinEachCtx(context.Background(), strs, 3, func(r, s int) bool {
					pairs++
					return true
				}, passjoin.WithParallelism(workers))
				if err != nil {
					b.Fatal(err)
				}
			}
			if pairs > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(pairs), "ns/pair")
			}
		})
	}
}

// BenchmarkShardedSearch measures concurrent query throughput against the
// sharded searcher as the shard count grows (the serving-layer extension
// beyond the paper). The result set is identical at every shard count;
// what changes is the cost split: each shard repeats the substring
// lookups into its own inverted lists (overhead that grows with N) while
// the candidate scanning and verification work divides by N and runs in
// parallel. On multi-core hardware throughput improves until shards
// outnumber cores; on a single core the fan-out stays in-line and the
// curve shows the pure lookup-duplication overhead instead.
func BenchmarkShardedSearch(b *testing.B) {
	cs := corpora(b)
	strs := cs["author"]
	for _, shards := range []int{1, 2, 4, 8} {
		ss, err := passjoin.NewShardedSearcher(strs, 2, passjoin.WithShards(shards))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					ss.Search(strs[i%len(strs)])
					i++
				}
			})
		})
	}
}

// BenchmarkPerQueryTau measures what the "one index, many thresholds"
// redesign costs at query time: a τ′=1 probe against an index partitioned
// for τ=3 (QueryTau tightens the selection windows and verification
// bounds) versus the same probe against a dedicated τ=1 index. The
// dedicated index has fewer, longer segments (2 slots instead of 4), so
// some gap is structural; what matters is that the shared index stays in
// the same regime while serving every threshold from one arena — holding
// a dedicated index per threshold costs memory linear in the number of
// thresholds served.
func BenchmarkPerQueryTau(b *testing.B) {
	cs := corpora(b)
	strs := cs["author"]
	shared, err := passjoin.NewSearcher(strs, 3)
	if err != nil {
		b.Fatal(err)
	}
	dedicated, err := passjoin.NewSearcher(strs, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("tau=3/query-tau=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			shared.Search(strs[i%len(strs)], passjoin.QueryTau(1))
		}
	})
	b.Run("tau=1/dedicated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dedicated.Search(strs[i%len(strs)])
		}
	})
	b.Run("tau=3/full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			shared.Search(strs[i%len(strs)])
		}
	})
}

// BenchmarkFrozenVsMapProbe compares the two index representations on the
// serving read path (the extension beyond the paper that Searcher and
// passjoind are built on). The "map" arms probe the mutable build index
// (per-(length,slot) Go maps); the "frozen" arms probe the sealed CSR
// form (open-addressing tables over one contiguous posting arena).
//
//   - map/read, frozen/read: the full read path. The map arm reproduces
//     the pre-freeze serving pipeline — probe, then recover each hit's
//     distance with a full-DP EditDistance pass; the frozen arm reads the
//     distances the verification pass already bounded, so it does no
//     second DP (hence fewer allocs/op as well as lower ns/op).
//   - map/probe, frozen/probe: structure isolation — identical id-only
//     queries on both representations, so the delta is purely Go-map
//     hashing + scattered postings vs hash-table + CSR arena.
func BenchmarkFrozenVsMapProbe(b *testing.B) {
	cs := corpora(b)
	strs := cs["author"]
	tau := 3
	// Queries are corpus strings with one substituted byte — the serving
	// regime (close but not identical), so hits genuinely pay distance
	// recovery rather than short-circuiting on equality.
	queries := make([]string, len(strs))
	for i, s := range strs {
		q := []byte(s)
		q[len(q)/2] = 'z'
		queries[i] = string(q)
	}
	build := func(seal bool) *core.Matcher {
		m, err := core.NewMatcher(tau, selection.MultiMatch, core.VerifyExtensionShared, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range strs {
			m.InsertSilent(s)
		}
		if seal {
			m.Seal()
		}
		return m
	}
	mapM, frozenM := build(false), build(true)
	b.Run("map/read", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			for _, id := range mapM.QueryIDs(q) {
				_ = verify.EditDistance(q, strs[id])
			}
		}
	})
	b.Run("frozen/read", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			frozenM.Query(queries[i%len(queries)])
		}
	})
	b.Run("map/probe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mapM.QueryIDs(queries[i%len(queries)])
		}
	})
	b.Run("frozen/probe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			frozenM.QueryIDs(queries[i%len(queries)])
		}
	})
}

// BenchmarkSearchTopK measures the k-bounded heap path against corpora
// where matches far outnumber k.
func BenchmarkSearchTopK(b *testing.B) {
	cs := corpora(b)
	strs := cs["author"]
	s, err := passjoin.NewSearcher(strs, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 10} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.SearchTopK(strs[i%len(strs)], k)
			}
		})
	}
}

// BenchmarkColdStart compares snapshot-load time for the two PJIX formats:
// v1 re-indexes the corpus, v2 loads the frozen arena directly.
func BenchmarkColdStart(b *testing.B) {
	cs := corpora(b)
	strs := cs["author"]
	s, err := passjoin.NewSearcher(strs, 2)
	if err != nil {
		b.Fatal(err)
	}
	var v2 bytes.Buffer
	if _, err := s.WriteTo(&v2); err != nil {
		b.Fatal(err)
	}
	ss, err := passjoin.NewShardedSearcher(strs, 2, passjoin.WithShards(1))
	if err != nil {
		b.Fatal(err)
	}
	var corpusOnly bytes.Buffer
	if _, err := ss.WriteTo(&corpusOnly); err != nil {
		b.Fatal(err)
	}
	b.Run("corpus-only-rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := passjoin.ReadSearcherFrom(bytes.NewReader(corpusOnly.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2-frozen-load", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := passjoin.ReadSearcherFrom(bytes.NewReader(v2.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMicroVerify isolates the verifier kernels of §5.1.
func BenchmarkMicroVerify(b *testing.B) {
	r := "kaushuk chadhui kaushuk chadhui kaushuk"
	s := "caushik chakrabar kaushik chakrab kaush"
	var v verify.Verifier
	b.Run("LengthAware", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v.Dist(r, s, 8)
		}
	})
	b.Run("Naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v.DistNaive(r, s, 8)
		}
	})
	b.Run("FullDP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			verify.EditDistance(r, s)
		}
	})
	b.Run("Myers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			verify.Myers(r, s)
		}
	})
}

// BenchmarkMicroMatcherInsert measures the online Matcher's per-insert
// cost on the query-log regime.
func BenchmarkMicroMatcherInsert(b *testing.B) {
	cs := corpora(b)
	strs := cs["querylog"]
	b.ReportAllocs()
	m, err := passjoin.NewMatcher(2)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		m.Insert(strs[i%len(strs)])
	}
}

// BenchmarkMicroSelfJoinFacade measures the public API end to end.
func BenchmarkMicroSelfJoinFacade(b *testing.B) {
	cs := corpora(b)
	strs := cs["author"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := passjoin.SelfJoin(strs, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicInsert measures the write path of the dynamic searcher:
// per-insert cost including delta indexing and periodic background
// compaction, with and without WAL durability (the durable arm pays one
// appending write syscall per insert).
func BenchmarkDynamicInsert(b *testing.B) {
	cs := corpora(b)
	strs := cs["author"]
	run := func(b *testing.B, dir string) {
		var (
			ds  *passjoin.DynamicSearcher
			err error
		)
		if dir == "" {
			ds, err = passjoin.NewDynamicSearcher(nil, 2, passjoin.WithShards(4))
		} else {
			ds, err = passjoin.OpenDynamicSearcher(dir, nil, 2, passjoin.WithShards(4))
		}
		if err != nil {
			b.Fatal(err)
		}
		defer ds.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ds.Insert(strs[i%len(strs)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("volatile", func(b *testing.B) { run(b, "") })
	b.Run("wal", func(b *testing.B) { run(b, b.TempDir()) })
}

// BenchmarkSearchUnderChurn measures query latency on a dynamic index
// while a writer goroutine keeps inserting and deleting (forcing delta
// growth and background compactions) — the serving regime the static
// BenchmarkShardedSearch cannot exercise.
func BenchmarkSearchUnderChurn(b *testing.B) {
	cs := corpora(b)
	strs := cs["author"]
	ds, err := passjoin.NewDynamicSearcher(strs, 2,
		passjoin.WithShards(4), passjoin.WithCompactThreshold(256))
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			id, err := ds.Insert(strs[i%len(strs)])
			if err != nil {
				b.Error(err)
				return
			}
			if i%2 == 0 {
				ds.Delete(id)
			}
			i++
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			ds.Search(strs[i%len(strs)])
			i++
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}
