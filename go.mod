module passjoin

go 1.24
