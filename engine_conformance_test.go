package passjoin_test

// The cross-engine conformance suite: every engine the registry exposes
// (and the planner's "auto") must return the identical pair set as the
// default Pass-Join path through the *public* API, on every corpus
// regime the repository knows about — the paper's three corpora, the
// small-alphabet DNA regime, the adversarial corpora, and the degenerate
// edge cases (empty corpus, mass duplicates, strings shorter than the
// threshold). This is the load-bearing contract of the engine subsystem:
// engines may differ only in cost, never in answers.

import (
	"fmt"
	"reflect"
	"testing"

	"passjoin"
	"passjoin/internal/dataset"
)

func TestEngineConformance(t *testing.T) {
	for _, reg := range dataset.JoinRegimes(7) {
		for _, tau := range reg.Taus {
			want, err := passjoin.SelfJoin(reg.Strs, tau)
			if err != nil {
				t.Fatalf("%s/tau=%d: reference join: %v", reg.Name, tau, err)
			}
			for _, name := range passjoin.Engines() {
				t.Run(fmt.Sprintf("%s/tau=%d/%s", reg.Name, tau, name), func(t *testing.T) {
					var st passjoin.Stats
					got, err := passjoin.SelfJoin(reg.Strs, tau, passjoin.WithEngine(name), passjoin.WithStats(&st))
					if err != nil {
						t.Fatalf("engine %s: %v", name, err)
					}
					if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
						t.Fatalf("engine %s: %d pairs, want %d (pair sets differ)", name, len(got), len(want))
					}
					if st.Engine == "" {
						t.Fatalf("engine %s: Stats.Engine not reported", name)
					}
					if name != "auto" && st.Engine != name {
						t.Fatalf("engine %s: Stats.Engine = %q", name, st.Engine)
					}
				})
			}
		}
	}
}

// The streaming forms must re-deliver exactly the materialized pair set,
// in order, for a materializing engine.
func TestEngineStreamingMatchesMaterialized(t *testing.T) {
	strs := dataset.Author(200, 11)
	want, err := passjoin.SelfJoin(strs, 2, passjoin.WithEngine("triejoin"))
	if err != nil {
		t.Fatal(err)
	}
	var got []passjoin.Pair
	err = passjoin.SelfJoinEach(strs, 2, func(r, s int) bool {
		got = append(got, passjoin.Pair{R: r, S: s})
		return true
	}, passjoin.WithEngine("triejoin"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed %d pairs != materialized %d", len(got), len(want))
	}
	// Early stop still honored on the drain path.
	n := 0
	err = passjoin.SelfJoinEach(strs, 2, func(r, s int) bool {
		n++
		return n < 3
	}, passjoin.WithEngine("triejoin"))
	if err != nil || n != 3 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}
}

// R×S joins run through the disjoint-union reduction for every engine
// and must agree with Pass-Join's native R×S path.
func TestEngineRSJoinConformance(t *testing.T) {
	rset := dataset.Author(120, 3)
	sset := dataset.Author(150, 4)
	want, err := passjoin.Join(rset, sset, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range passjoin.Engines() {
		got, err := passjoin.Join(rset, sset, 2, passjoin.WithEngine(name))
		if err != nil {
			t.Fatalf("engine %s: %v", name, err)
		}
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("engine %s: %d pairs, want %d (pair sets differ)", name, len(got), len(want))
		}
	}
}

func TestWithEngineUnknownName(t *testing.T) {
	if _, err := passjoin.SelfJoin([]string{"a"}, 1, passjoin.WithEngine("nope")); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
