package passjoin_test

import (
	"bytes"
	"fmt"

	"passjoin"
)

// TopK finds the closest pairs without choosing a threshold up front.
func ExampleTopK() {
	strs := []string{"vldb", "pvldb", "sigmod", "sigmmod", "icde"}
	pairs, _ := passjoin.TopK(strs, 2)
	for _, p := range pairs {
		fmt.Printf("%s ~ %s (distance %d)\n", strs[p.R], strs[p.S], p.Dist)
	}
	// Output:
	// vldb ~ pvldb (distance 1)
	// sigmod ~ sigmmod (distance 1)
}

// A Searcher answers repeated approximate lookups against a fixed corpus.
func ExampleNewSearcher() {
	dict := []string{"british airways", "britney spears", "bright eyes"}
	s, _ := passjoin.NewSearcher(dict, 2)
	for _, hit := range s.Search("britny spears") {
		fmt.Printf("%s (distance %d)\n", dict[hit.ID], hit.Dist)
	}
	// Output:
	// britney spears (distance 1)
}

// SelfJoinEach streams results without materializing them — here, stopping
// after the first match.
func ExampleSelfJoinEach() {
	strs := []string{"aaaa", "aaab", "bbbb", "aabb"}
	_ = passjoin.SelfJoinEach(strs, 1, func(r, s int) bool {
		fmt.Printf("first pair: %s ~ %s\n", strs[r], strs[s])
		return false // stop after one
	})
	// Output:
	// first pair: aaaa ~ aaab
}

// Searchers serialize to a compact snapshot and reload with the index
// rebuilt.
func ExampleSearcher_WriteTo() {
	orig, _ := passjoin.NewSearcher([]string{"alpha", "beta", "gamma"}, 1)
	var buf bytes.Buffer
	orig.WriteTo(&buf)

	loaded, _ := passjoin.ReadSearcherFrom(&buf)
	hits := loaded.Search("betta")
	fmt.Println(loaded.Len(), loaded.Tau(), loaded.At(hits[0].ID))
	// Output:
	// 3 1 beta
}
