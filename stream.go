package passjoin

import (
	"errors"

	"passjoin/internal/core"
)

var errNilYield = errors.New("passjoin: nil yield callback")

// SelfJoinEach streams self-join results to yield as they are found,
// without materializing the result set — useful when the output is large
// or when only the first few matches matter. Pairs arrive in scan order
// (sorted by the longer string's length), not in (R, S) order. yield
// returning false stops the join early.
//
// The streaming form runs sequentially; WithParallelism is ignored.
func SelfJoinEach(strs []string, tau int, yield func(r, s int) bool, opts ...Option) error {
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return err
	}
	if yield == nil {
		return errNilYield
	}
	o := cfg.coreOptions(tau)
	err = core.SelfJoinFunc(strs, o, func(p core.Pair) bool {
		return yield(int(p.R), int(p.S))
	})
	cfg.stats.fill()
	return err
}

// JoinEach streams R×S join results to yield as they are found. yield's r
// indexes rset and s indexes sset; returning false stops the join early.
func JoinEach(rset, sset []string, tau int, yield func(r, s int) bool, opts ...Option) error {
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return err
	}
	if yield == nil {
		return errNilYield
	}
	o := cfg.coreOptions(tau)
	err = core.JoinFunc(rset, sset, o, func(p core.Pair) bool {
		return yield(int(p.R), int(p.S))
	})
	cfg.stats.fill()
	return err
}
