package passjoin

import (
	"context"
	"errors"

	"passjoin/internal/core"
	"passjoin/internal/engine"
)

var errNilYield = errors.New("passjoin: nil yield callback")

// drainEngine runs a materializing join engine and re-delivers its pair
// set through yield on the calling goroutine, preserving the streaming
// contract for engines that have no streaming mode: pairs arrive in the
// engine's deterministic (R, S)-sorted order, yield returning false
// stops the drain, and — when ctx is cancellable — cancellation returns
// promptly even while the algorithm is still running (the engine runs on
// a helper goroutine; an abandoned run finishes in the background and
// its result is discarded). The drain itself re-checks ctx periodically
// so a disconnect during a huge re-delivery is also prompt.
func drainEngine(ctx context.Context, cfg config, run func() ([]core.Pair, error), yield func(r, s int) bool) error {
	type result struct {
		pairs []core.Pair
		err   error
	}
	var res result
	if ctx.Done() == nil {
		res.pairs, res.err = run()
	} else {
		ch := make(chan result, 1)
		go func() {
			var r result
			r.pairs, r.err = run()
			ch <- r
		}()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case res = <-ch:
		}
	}
	if res.err != nil {
		return res.err
	}
	cfg.stats.fill()
	for i, p := range res.pairs {
		if i%1024 == 1023 && ctx.Err() != nil {
			return ctx.Err()
		}
		if !yield(int(p.R), int(p.S)) {
			return nil
		}
	}
	return nil
}

// SelfJoinEach streams self-join results to yield as they are found,
// without materializing the result set — useful when the output is large
// or when only the first few matches matter. yield returning false stops
// the join early.
//
// With WithParallelism(n <= 1) — the default — the join runs the paper's
// sequential sliding-window scan: pairs arrive in scan order (sorted by
// the longer string's length) and index memory stays bounded by the
// (τ+1)² live length groups. With WithParallelism(n > 1) the probe pass
// fans out over n workers that feed a bounded channel (see
// SelfJoinEachCtx): pairs then arrive in no deterministic order, but
// yield is still invoked from the calling goroutine only, so it needs no
// synchronization in either mode.
func SelfJoinEach(strs []string, tau int, yield func(r, s int) bool, opts ...Option) error {
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return err
	}
	if yield == nil {
		return errNilYield
	}
	if e, ok, err := cfg.resolveEngine(strs, tau); err != nil {
		return err
	} else if ok {
		err = drainEngine(context.Background(), cfg, func() ([]core.Pair, error) {
			return e.SelfJoin(strs, tau, cfg.statsSink())
		}, yield)
		cfg.stats.setEngine(e.Name())
		return err
	}
	o := cfg.coreOptions(tau)
	emit := func(p core.Pair) bool { return yield(int(p.R), int(p.S)) }
	if o.Parallel > 1 {
		err = core.SelfJoinStream(context.Background(), strs, o, emit)
	} else {
		err = core.SelfJoinFunc(strs, o, emit)
	}
	cfg.stats.fill()
	cfg.stats.setEngine(engine.Default)
	return err
}

// JoinEach streams R×S join results to yield as they are found. yield's r
// indexes rset and s indexes sset; returning false stops the join early.
// Parallelism and ordering semantics match SelfJoinEach: sequential scan
// order by default, n-worker fan-out with arbitrary order under
// WithParallelism(n > 1), yield always on the calling goroutine.
func JoinEach(rset, sset []string, tau int, yield func(r, s int) bool, opts ...Option) error {
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return err
	}
	if yield == nil {
		return errNilYield
	}
	if e, ok, err := cfg.resolveEngineRS(rset, sset, tau); err != nil {
		return err
	} else if ok {
		err = drainEngine(context.Background(), cfg, func() ([]core.Pair, error) {
			return engine.RSJoin(e, rset, sset, tau, cfg.statsSink())
		}, yield)
		cfg.stats.setEngine(e.Name())
		return err
	}
	o := cfg.coreOptions(tau)
	emit := func(p core.Pair) bool { return yield(int(p.R), int(p.S)) }
	if o.Parallel > 1 {
		err = core.JoinStream(context.Background(), rset, sset, o, emit)
	} else {
		err = core.JoinFunc(rset, sset, o, emit)
	}
	cfg.stats.fill()
	cfg.stats.setEngine(engine.Default)
	return err
}

// SelfJoinEachCtx is the context-aware form of SelfJoinEach, built for
// long bulk joins that must be cancellable (server request handling,
// deadline-bounded jobs). It always runs the index-once/probe-stream
// engine: the segment index is built over all of strs (full residency —
// no sliding-window eviction), frozen, and probed by WithParallelism(n)
// workers (default 1) that emit pairs through a bounded channel with
// backpressure, so the result set is never materialized.
//
// yield runs on the calling goroutine; with n > 1 pairs arrive in no
// deterministic order. yield returning false stops the join early and
// returns nil. When ctx is cancelled the probe workers stop promptly
// (they check between strings) and the error is ctx.Err().
func SelfJoinEachCtx(ctx context.Context, strs []string, tau int, yield func(r, s int) bool, opts ...Option) error {
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return err
	}
	if yield == nil {
		return errNilYield
	}
	if e, ok, err := cfg.resolveEngine(strs, tau); err != nil {
		return err
	} else if ok {
		err = drainEngine(ctx, cfg, func() ([]core.Pair, error) {
			return e.SelfJoin(strs, tau, cfg.statsSink())
		}, yield)
		cfg.stats.setEngine(e.Name())
		return err
	}
	err = core.SelfJoinStream(ctx, strs, cfg.coreOptions(tau), func(p core.Pair) bool {
		return yield(int(p.R), int(p.S))
	})
	cfg.stats.fill()
	cfg.stats.setEngine(engine.Default)
	return err
}

// JoinEachCtx is the context-aware form of JoinEach: sset is indexed once
// and frozen, then WithParallelism(n) workers stream the rset probes.
// Cancellation, ordering and early-stop semantics match SelfJoinEachCtx.
func JoinEachCtx(ctx context.Context, rset, sset []string, tau int, yield func(r, s int) bool, opts ...Option) error {
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return err
	}
	if yield == nil {
		return errNilYield
	}
	if e, ok, err := cfg.resolveEngineRS(rset, sset, tau); err != nil {
		return err
	} else if ok {
		err = drainEngine(ctx, cfg, func() ([]core.Pair, error) {
			return engine.RSJoin(e, rset, sset, tau, cfg.statsSink())
		}, yield)
		cfg.stats.setEngine(e.Name())
		return err
	}
	err = core.JoinStream(ctx, rset, sset, cfg.coreOptions(tau), func(p core.Pair) bool {
		return yield(int(p.R), int(p.S))
	})
	cfg.stats.fill()
	cfg.stats.setEngine(engine.Default)
	return err
}
