package passjoin

import (
	"context"
	"errors"

	"passjoin/internal/core"
)

var errNilYield = errors.New("passjoin: nil yield callback")

// SelfJoinEach streams self-join results to yield as they are found,
// without materializing the result set — useful when the output is large
// or when only the first few matches matter. yield returning false stops
// the join early.
//
// With WithParallelism(n <= 1) — the default — the join runs the paper's
// sequential sliding-window scan: pairs arrive in scan order (sorted by
// the longer string's length) and index memory stays bounded by the
// (τ+1)² live length groups. With WithParallelism(n > 1) the probe pass
// fans out over n workers that feed a bounded channel (see
// SelfJoinEachCtx): pairs then arrive in no deterministic order, but
// yield is still invoked from the calling goroutine only, so it needs no
// synchronization in either mode.
func SelfJoinEach(strs []string, tau int, yield func(r, s int) bool, opts ...Option) error {
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return err
	}
	if yield == nil {
		return errNilYield
	}
	o := cfg.coreOptions(tau)
	emit := func(p core.Pair) bool { return yield(int(p.R), int(p.S)) }
	if o.Parallel > 1 {
		err = core.SelfJoinStream(context.Background(), strs, o, emit)
	} else {
		err = core.SelfJoinFunc(strs, o, emit)
	}
	cfg.stats.fill()
	return err
}

// JoinEach streams R×S join results to yield as they are found. yield's r
// indexes rset and s indexes sset; returning false stops the join early.
// Parallelism and ordering semantics match SelfJoinEach: sequential scan
// order by default, n-worker fan-out with arbitrary order under
// WithParallelism(n > 1), yield always on the calling goroutine.
func JoinEach(rset, sset []string, tau int, yield func(r, s int) bool, opts ...Option) error {
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return err
	}
	if yield == nil {
		return errNilYield
	}
	o := cfg.coreOptions(tau)
	emit := func(p core.Pair) bool { return yield(int(p.R), int(p.S)) }
	if o.Parallel > 1 {
		err = core.JoinStream(context.Background(), rset, sset, o, emit)
	} else {
		err = core.JoinFunc(rset, sset, o, emit)
	}
	cfg.stats.fill()
	return err
}

// SelfJoinEachCtx is the context-aware form of SelfJoinEach, built for
// long bulk joins that must be cancellable (server request handling,
// deadline-bounded jobs). It always runs the index-once/probe-stream
// engine: the segment index is built over all of strs (full residency —
// no sliding-window eviction), frozen, and probed by WithParallelism(n)
// workers (default 1) that emit pairs through a bounded channel with
// backpressure, so the result set is never materialized.
//
// yield runs on the calling goroutine; with n > 1 pairs arrive in no
// deterministic order. yield returning false stops the join early and
// returns nil. When ctx is cancelled the probe workers stop promptly
// (they check between strings) and the error is ctx.Err().
func SelfJoinEachCtx(ctx context.Context, strs []string, tau int, yield func(r, s int) bool, opts ...Option) error {
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return err
	}
	if yield == nil {
		return errNilYield
	}
	err = core.SelfJoinStream(ctx, strs, cfg.coreOptions(tau), func(p core.Pair) bool {
		return yield(int(p.R), int(p.S))
	})
	cfg.stats.fill()
	return err
}

// JoinEachCtx is the context-aware form of JoinEach: sset is indexed once
// and frozen, then WithParallelism(n) workers stream the rset probes.
// Cancellation, ordering and early-stop semantics match SelfJoinEachCtx.
func JoinEachCtx(ctx context.Context, rset, sset []string, tau int, yield func(r, s int) bool, opts ...Option) error {
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return err
	}
	if yield == nil {
		return errNilYield
	}
	err = core.JoinStream(ctx, rset, sset, cfg.coreOptions(tau), func(p core.Pair) bool {
		return yield(int(p.R), int(p.S))
	})
	cfg.stats.fill()
	return err
}
