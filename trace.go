package passjoin

import "passjoin/internal/obs"

// Trace collects a per-phase timing breakdown of one Search call — the
// flight-recorder view of a query: how much wall time went to substring
// selection, index probing, candidate deduplication, and verification,
// and how many operations each phase performed. Attach one with the
// QueryTrace option:
//
//	var tr passjoin.Trace
//	idx.Search(q, passjoin.QueryTrace(&tr))
//	for _, p := range tr.Phases() { ... }
//
// A Trace must not be shared by concurrent Search calls; the parallel
// searchers trace each shard privately and merge into it after the
// fan-out joins. Tracing adds clock reads around each phase transition
// (roughly tens of nanoseconds per inverted list), so it is a per-query
// debugging tool, not an always-on default; untraced queries pay nothing.
//
// The zero value is ready to use. Phase times are exclusive — nested
// phases pause their parent — so they sum to the traced probe time.
type Trace struct {
	inner obs.QueryTrace
}

// PhaseTiming is one phase's share of a traced query.
type PhaseTiming struct {
	// Phase names the stage: "selection", "probe", "dedup" or "verify".
	Phase string
	// Nanos is the exclusive wall time spent in the phase.
	Nanos int64
	// Count is the phase's operation count: substrings selected, lists
	// looked up, candidate occurrences scanned, verifier invocations.
	Count int64
}

// Phases returns the breakdown in fixed phase order (selection, probe,
// dedup, verify), including phases with zero time.
func (t *Trace) Phases() []PhaseTiming {
	out := make([]PhaseTiming, obs.NumPhases)
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		ps := t.inner.Phase(p)
		out[p] = PhaseTiming{Phase: p.String(), Nanos: ps.Nanos, Count: ps.Count}
	}
	return out
}

// TotalNanos returns the summed wall time across phases.
func (t *Trace) TotalNanos() int64 { return t.inner.TotalNanos() }

// Reset zeroes the trace for reuse by a later query.
func (t *Trace) Reset() { t.inner.Reset() }
