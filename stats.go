package passjoin

import (
	"passjoin/internal/metrics"
)

// Stats reports instrumentation counters from a join run. Attach with
// WithStats; the struct is overwritten when the join returns.
type Stats struct {
	// Engine is the join algorithm that actually ran: the WithEngine
	// name, or the engine "auto" resolved to. "passjoin" for the default
	// path. Empty for runs that never reach a join (searcher
	// construction, lookups).
	Engine string
	// Strings is the number of input strings scanned.
	Strings int64
	// ShortStrings counts strings of length <= tau, which bypass the
	// segment index (they cannot be split into tau+1 non-empty segments).
	ShortStrings int64
	// SelectedSubstrings counts substrings enumerated by the selection
	// method (Figure 12's metric).
	SelectedSubstrings int64
	// Lookups / LookupHits count inverted-index probes and non-empty hits.
	Lookups    int64
	LookupHits int64
	// Candidates counts candidate occurrences scanned from inverted lists;
	// UniqueCandidates counts deduplicated pairs.
	Candidates       int64
	UniqueCandidates int64
	// Verifications counts verifier invocations.
	Verifications int64
	// DPCells counts dynamic-programming cells computed.
	DPCells int64
	// EarlyTerminations counts verifications stopped by the
	// expected-edit-distance rule (Lemma 4).
	EarlyTerminations int64
	// SharedRows counts DP rows reused via common-prefix sharing (§5.3).
	SharedRows int64
	// Results is the number of similar pairs found.
	Results int64
	// IndexBytes approximates the peak retained size of the segment index
	// (Table 3's metric); IndexEntries is its posting count.
	IndexBytes   int64
	IndexEntries int64
	// FrozenBytes is the exact retained size of the sealed (frozen CSR)
	// index a Searcher or ShardedSearcher serves from; FrozenEntries is
	// its posting count. Zero for runs that never seal (joins, Matcher).
	FrozenBytes   int64
	FrozenEntries int64
	// Dynamic-index counters, populated by DynamicSearcher.Stats and zero
	// everywhere else: documents in the mutable deltas (live or
	// tombstoned), deletes pending compaction, completed and failed
	// compactions, and the write-ahead-log footprint.
	DeltaDocs     int64
	Tombstones    int64
	Compactions   int64
	CompactErrors int64
	WALBytes      int64
	WALRecords    int64

	inner *metrics.Stats
}

// setEngine records which join algorithm ran; nil-safe like fill.
func (s *Stats) setEngine(name string) {
	if s != nil {
		s.Engine = name
	}
}

// reset prepares the internal sink for a fresh run.
func (s *Stats) reset() *metrics.Stats {
	s.inner = &metrics.Stats{}
	return s.inner
}

// fill copies the internal counters into the public fields.
func (s *Stats) fill() {
	if s == nil || s.inner == nil {
		return
	}
	in := s.inner
	s.Strings = in.Strings
	s.ShortStrings = in.ShortStrings
	s.SelectedSubstrings = in.SelectedSubstrings
	s.Lookups = in.Lookups
	s.LookupHits = in.LookupHits
	s.Candidates = in.Candidates
	s.UniqueCandidates = in.UniqueCandidates
	s.Verifications = in.Verifications
	s.DPCells = in.DPCells
	s.EarlyTerminations = in.EarlyTerms
	s.SharedRows = in.SharedRows
	s.Results = in.Results
	s.IndexBytes = in.IndexBytes
	s.IndexEntries = in.IndexEntries
	s.FrozenBytes = in.FrozenBytes
	s.FrozenEntries = in.FrozenEntries
	s.DeltaDocs = in.DeltaStrings
	s.Tombstones = in.Tombstones
	s.Compactions = in.Compactions
	s.CompactErrors = in.CompactErrors
	s.WALBytes = in.WALBytes
	s.WALRecords = in.WALRecords
}

// fillMerged aggregates per-shard internal counters into this sink —
// the cross-shard Stats wiring used by ShardedSearcher. Nil entries in
// parts are skipped; a nil receiver is a no-op.
func (s *Stats) fillMerged(parts []*metrics.Stats) {
	if s == nil {
		return
	}
	merged := &metrics.Stats{}
	for _, p := range parts {
		merged.Add(p)
	}
	s.inner = merged
	s.fill()
}

// String renders the non-zero counters on one line.
func (s *Stats) String() string {
	if s == nil {
		return "<nil stats>"
	}
	if s.inner != nil {
		return s.inner.String()
	}
	return (&metrics.Stats{
		Strings:            s.Strings,
		ShortStrings:       s.ShortStrings,
		SelectedSubstrings: s.SelectedSubstrings,
		Lookups:            s.Lookups,
		LookupHits:         s.LookupHits,
		Candidates:         s.Candidates,
		UniqueCandidates:   s.UniqueCandidates,
		Verifications:      s.Verifications,
		DPCells:            s.DPCells,
		EarlyTerms:         s.EarlyTerminations,
		SharedRows:         s.SharedRows,
		Results:            s.Results,
		IndexBytes:         s.IndexBytes,
		IndexEntries:       s.IndexEntries,
		FrozenBytes:        s.FrozenBytes,
		FrozenEntries:      s.FrozenEntries,
		DeltaStrings:       s.DeltaDocs,
		Tombstones:         s.Tombstones,
		Compactions:        s.Compactions,
		CompactErrors:      s.CompactErrors,
		WALBytes:           s.WALBytes,
		WALRecords:         s.WALRecords,
	}).String()
}
