package passjoin_test

import (
	"bytes"
	"fmt"

	"passjoin"
)

// ExampleNewShardedSearcher shows the concurrent-safe serving index: the
// corpus is hash-partitioned across shards and queries fan out to all of
// them, so any number of goroutines may Search the same value.
func ExampleNewShardedSearcher() {
	corpus := []string{"vldb", "pvldb", "sigmod", "sigmmod", "icde", "vldbj"}
	s, err := passjoin.NewShardedSearcher(corpus, 1, passjoin.WithShards(2))
	if err != nil {
		panic(err)
	}
	done := make(chan struct{})
	go func() { // no Clone needed, unlike Searcher
		s.Search("sigmod")
		close(done)
	}()
	for _, m := range s.Search("vldb") {
		fmt.Printf("%s (dist %d)\n", s.At(m.ID), m.Dist)
	}
	<-done
	// Output:
	// vldb (dist 0)
	// pvldb (dist 1)
	// vldbj (dist 1)
}

// ExampleShardedSearcher_SearchTopK shows top-k search: the k nearest
// corpus strings among those within the indexed threshold.
func ExampleShardedSearcher_SearchTopK() {
	corpus := []string{"icde", "vldb", "pvldb", "vldbj", "icdt"}
	s, err := passjoin.NewShardedSearcher(corpus, 2, passjoin.WithShards(2))
	if err != nil {
		panic(err)
	}
	for _, m := range s.SearchTopK("vldb", 2) {
		fmt.Printf("%s (dist %d)\n", s.At(m.ID), m.Dist)
	}
	// Output:
	// vldb (dist 0)
	// pvldb (dist 1)
}

// ExampleSearcher_SearchTopK shows the same top-k search on the
// single-index Searcher.
func ExampleSearcher_SearchTopK() {
	corpus := []string{"icde", "vldb", "pvldb", "vldbj", "icdt"}
	s, err := passjoin.NewSearcher(corpus, 2)
	if err != nil {
		panic(err)
	}
	for _, m := range s.SearchTopK("icde", 2) {
		fmt.Printf("%s (dist %d)\n", s.At(m.ID), m.Dist)
	}
	// Output:
	// icde (dist 0)
	// icdt (dist 1)
}

// ExampleShardedSearcher_WriteTo snapshots a sharded index and reloads it
// with a different shard count — the snapshot stores only the corpus, so
// shard topology is a load-time choice.
func ExampleShardedSearcher_WriteTo() {
	corpus := []string{"vldb", "pvldb", "sigmod"}
	s, err := passjoin.NewShardedSearcher(corpus, 1, passjoin.WithShards(3))
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		panic(err)
	}
	re, err := passjoin.ReadShardedSearcherFrom(&buf, passjoin.WithShards(1))
	if err != nil {
		panic(err)
	}
	fmt.Println(re.Len(), re.Tau(), re.NumShards())
	// Output:
	// 3 1 1
}
