package passjoin

import (
	"io"

	"passjoin/internal/core"
	"passjoin/internal/persist"
)

// Searcher persistence: a compact binary snapshot of the indexed corpus,
// threshold, and (version 2) the frozen segment index itself. The codec —
// format layout, checksumming, and validation — lives in internal/persist
// and is shared with the dynamic tier's base snapshots (internal/dynamic);
// this file binds it to the public Searcher types.
//
// A ShardedSearcher snapshot is written without the frozen section (its
// frozen arenas are per-shard and the shard count is a load-time choice),
// so it loads into a Searcher or a ShardedSearcher with any shard count; a
// Searcher snapshot carries the frozen index and also loads either way
// (the sharded reader re-partitions from the corpus).

// WriteTo serializes the searcher's corpus, threshold, and frozen index
// (PJIX v2). It implements io.WriterTo.
func (s *Searcher) WriteTo(w io.Writer) (int64, error) {
	return persist.WriteSnapshot(w, s.tau, s.Len(), s.At, s.m.FrozenIndex())
}

// ReadSearcherFrom deserializes a searcher written by WriteTo. Version 2
// snapshots restore the frozen index directly — the cold-start cost is
// reading postings, not re-partitioning and re-indexing the corpus;
// version 1 snapshots rebuild the index as before. Options apply to the
// loaded searcher (the threshold comes from the snapshot).
func ReadSearcherFrom(r io.Reader, opts ...Option) (*Searcher, error) {
	corpus, tau, fz, err := persist.ReadSnapshot(r, true)
	if err != nil {
		return nil, err
	}
	if fz == nil {
		return NewSearcher(corpus, tau, opts...)
	}
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return nil, err
	}
	inner := cfg.coreOptions(tau)
	m, err := core.NewSealedMatcher(tau, inner.Selection, inner.Verification, inner.Stats, corpus, fz)
	if err != nil {
		return nil, err
	}
	cfg.stats.fill()
	return newSearcherFromSealed(m, tau), nil
}

// WriteTo serializes the sharded searcher's corpus and threshold in
// original corpus order (PJIX v2, corpus-only: the per-shard frozen
// arenas are a function of the load-time shard count, so the snapshot
// stays shard-count independent and loads into either searcher kind). It
// implements io.WriterTo.
func (ss *ShardedSearcher) WriteTo(w io.Writer) (int64, error) {
	return persist.WriteSnapshot(w, ss.tau, ss.Len(), ss.At, nil)
}

// ReadShardedSearcherFrom deserializes a snapshot written by either
// WriteTo and rebuilds a sharded index (any frozen section is decoded
// only far enough to checksum and validate it, never materialized;
// shards re-partition the corpus because the shard count is a load-time
// choice). Options (including WithShards) apply to the rebuilt searcher;
// the threshold comes from the snapshot.
func ReadShardedSearcherFrom(r io.Reader, opts ...Option) (*ShardedSearcher, error) {
	corpus, tau, _, err := persist.ReadSnapshot(r, false)
	if err != nil {
		return nil, err
	}
	return NewShardedSearcher(corpus, tau, opts...)
}
