package passjoin

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Searcher persistence: a compact binary snapshot of the indexed corpus
// and threshold. Segment inverted indices are rebuilt on load — indexing
// is a single O(total bytes) pass, far cheaper than a join, and
// rebuilding keeps the format independent of internal index layout (the
// snapshot stays readable across versions of this library). Because the
// format stores only the corpus, the same snapshot loads into a plain
// Searcher or a ShardedSearcher with any shard count.
//
// Format (all integers unsigned varints):
//
//	magic "PJIX" | version 1 | tau | count | count × (len | bytes)

const (
	persistMagic   = "PJIX"
	persistVersion = 1
)

// writeSnapshot emits the PJIX snapshot for a corpus exposed as (count,
// at); both Searcher and ShardedSearcher serialize through it.
func writeSnapshot(w io.Writer, tau, count int, at func(int) string) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	var scratch [binary.MaxVarintLen64]byte
	emit := func(p []byte) error {
		n, err := bw.Write(p)
		written += int64(n)
		return err
	}
	emitUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		return emit(scratch[:n])
	}
	if err := emit([]byte(persistMagic)); err != nil {
		return written, err
	}
	if err := emitUvarint(persistVersion); err != nil {
		return written, err
	}
	if err := emitUvarint(uint64(tau)); err != nil {
		return written, err
	}
	if err := emitUvarint(uint64(count)); err != nil {
		return written, err
	}
	for id := 0; id < count; id++ {
		str := at(id)
		if err := emitUvarint(uint64(len(str))); err != nil {
			return written, err
		}
		if err := emit([]byte(str)); err != nil {
			return written, err
		}
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	return written, nil
}

// readSnapshot parses a PJIX snapshot back into (corpus, tau).
func readSnapshot(r io.Reader) ([]string, int, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, 0, fmt.Errorf("passjoin: reading snapshot header: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, 0, fmt.Errorf("passjoin: not a searcher snapshot (magic %q)", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, 0, fmt.Errorf("passjoin: reading snapshot version: %w", err)
	}
	if version != persistVersion {
		return nil, 0, fmt.Errorf("passjoin: unsupported snapshot version %d", version)
	}
	tau64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, 0, fmt.Errorf("passjoin: reading threshold: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, 0, fmt.Errorf("passjoin: reading corpus size: %w", err)
	}
	const maxStringLen = 1 << 30
	// count is attacker-controlled until proven by actual data; cap the
	// preallocation so a corrupt header cannot panic or OOM the process.
	prealloc := count
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	corpus := make([]string, 0, prealloc)
	for i := uint64(0); i < count; i++ {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, 0, fmt.Errorf("passjoin: reading string %d length: %w", i, err)
		}
		if n > maxStringLen {
			return nil, 0, fmt.Errorf("passjoin: string %d length %d exceeds limit", i, n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, 0, fmt.Errorf("passjoin: reading string %d: %w", i, err)
		}
		corpus = append(corpus, string(buf))
	}
	return corpus, int(tau64), nil
}

// WriteTo serializes the searcher's corpus and threshold. It implements
// io.WriterTo.
func (s *Searcher) WriteTo(w io.Writer) (int64, error) {
	return writeSnapshot(w, s.tau, s.Len(), s.At)
}

// ReadSearcherFrom deserializes a searcher written by WriteTo and rebuilds
// its index. Options apply to the rebuilt searcher (the threshold comes
// from the snapshot).
func ReadSearcherFrom(r io.Reader, opts ...Option) (*Searcher, error) {
	corpus, tau, err := readSnapshot(r)
	if err != nil {
		return nil, err
	}
	return NewSearcher(corpus, tau, opts...)
}

// WriteTo serializes the sharded searcher's corpus and threshold in
// original corpus order, so the snapshot is byte-identical to the
// equivalent Searcher's and loads with any shard count. It implements
// io.WriterTo.
func (ss *ShardedSearcher) WriteTo(w io.Writer) (int64, error) {
	return writeSnapshot(w, ss.tau, ss.Len(), ss.At)
}

// ReadShardedSearcherFrom deserializes a snapshot written by either
// WriteTo and rebuilds a sharded index for fast cold starts. Options
// (including WithShards) apply to the rebuilt searcher; the threshold
// comes from the snapshot.
func ReadShardedSearcherFrom(r io.Reader, opts ...Option) (*ShardedSearcher, error) {
	corpus, tau, err := readSnapshot(r)
	if err != nil {
		return nil, err
	}
	return NewShardedSearcher(corpus, tau, opts...)
}
