package passjoin

import (
	"passjoin/internal/core"
	"passjoin/internal/verify"
)

// Pair is one join result: indices into the input slice(s). For SelfJoin,
// R < S and both index the single input; for Join, R indexes the first
// input and S the second.
type Pair struct {
	R, S int
}

// SelfJoin returns every unordered pair of strings in strs whose edit
// distance is at most tau. The result is exact (Theorem 6 of the paper:
// complete and correct), sorted lexicographically by (R, S), with R < S.
//
// Strings are treated as byte sequences; for Unicode text the threshold
// counts byte edits, so normalize or transliterate first if rune-level
// distances are required.
func SelfJoin(strs []string, tau int, opts ...Option) ([]Pair, error) {
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return nil, err
	}
	pairs, err := core.SelfJoin(strs, cfg.coreOptions(tau))
	if err != nil {
		return nil, err
	}
	cfg.stats.fill()
	return convert(pairs), nil
}

// Join returns every pair (r, s) from rset × sset whose edit distance is
// at most tau. Pair.R indexes rset and Pair.S indexes sset; the result is
// exact and sorted.
func Join(rset, sset []string, tau int, opts ...Option) ([]Pair, error) {
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return nil, err
	}
	pairs, err := core.Join(rset, sset, cfg.coreOptions(tau))
	if err != nil {
		return nil, err
	}
	cfg.stats.fill()
	return convert(pairs), nil
}

func convert(ps []core.Pair) []Pair {
	out := make([]Pair, len(ps))
	for i, p := range ps {
		out[i] = Pair{R: int(p.R), S: int(p.S)}
	}
	return out
}

// EditDistance returns the exact (unbounded) Levenshtein distance between
// a and b, counting byte-level insertions, deletions and substitutions.
func EditDistance(a, b string) int {
	return verify.EditDistance(a, b)
}

// Within reports whether ed(a, b) <= tau using the paper's length-aware
// banded verification — O((τ+1)·min(|a|,|b|)) time instead of the full
// quadratic dynamic program. tau must be non-negative.
func Within(a, b string, tau int) bool {
	return verify.Within(a, b, tau)
}
