package passjoin

import (
	"passjoin/internal/core"
	"passjoin/internal/engine"
	"passjoin/internal/verify"
)

// Pair is one join result: indices into the input slice(s). For SelfJoin,
// R < S and both index the single input; for Join, R indexes the first
// input and S the second.
type Pair struct {
	R, S int
}

// SelfJoin returns every unordered pair of strings in strs whose edit
// distance is at most tau. The result is exact (Theorem 6 of the paper:
// complete and correct), sorted lexicographically by (R, S), with R < S.
//
// Strings are treated as byte sequences; for Unicode text the threshold
// counts byte edits, so normalize or transliterate first if rune-level
// distances are required.
//
// WithEngine swaps the algorithm (or lets the planner pick one with
// "auto"); the result set is identical for every engine.
func SelfJoin(strs []string, tau int, opts ...Option) ([]Pair, error) {
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return nil, err
	}
	if e, ok, err := cfg.resolveEngine(strs, tau); err != nil {
		return nil, err
	} else if ok {
		pairs, err := e.SelfJoin(strs, tau, cfg.statsSink())
		if err != nil {
			return nil, err
		}
		cfg.stats.fill()
		cfg.stats.setEngine(e.Name())
		return convert(pairs), nil
	}
	pairs, err := core.SelfJoin(strs, cfg.coreOptions(tau))
	if err != nil {
		return nil, err
	}
	cfg.stats.fill()
	cfg.stats.setEngine(engine.Default)
	return convert(pairs), nil
}

// Join returns every pair (r, s) from rset × sset whose edit distance is
// at most tau. Pair.R indexes rset and Pair.S indexes sset; the result is
// exact and sorted.
//
// WithEngine applies here too: engines other than "passjoin" answer the
// R×S join by self-joining the concatenated corpus and keeping the
// cross-boundary pairs (exact, but costlier than Pass-Join's native R×S
// path — see internal/engine.RSJoin).
func Join(rset, sset []string, tau int, opts ...Option) ([]Pair, error) {
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return nil, err
	}
	if e, ok, err := cfg.resolveEngineRS(rset, sset, tau); err != nil {
		return nil, err
	} else if ok {
		pairs, err := engine.RSJoin(e, rset, sset, tau, cfg.statsSink())
		if err != nil {
			return nil, err
		}
		cfg.stats.fill()
		cfg.stats.setEngine(e.Name())
		return convert(pairs), nil
	}
	pairs, err := core.Join(rset, sset, cfg.coreOptions(tau))
	if err != nil {
		return nil, err
	}
	cfg.stats.fill()
	cfg.stats.setEngine(engine.Default)
	return convert(pairs), nil
}

func convert(ps []core.Pair) []Pair {
	out := make([]Pair, len(ps))
	for i, p := range ps {
		out[i] = Pair{R: int(p.R), S: int(p.S)}
	}
	return out
}

// EditDistance returns the exact (unbounded) Levenshtein distance between
// a and b, counting byte-level insertions, deletions and substitutions.
func EditDistance(a, b string) int {
	return verify.EditDistance(a, b)
}

// Within reports whether ed(a, b) <= tau using the paper's length-aware
// banded verification — O((τ+1)·min(|a|,|b|)) time instead of the full
// quadratic dynamic program. tau must be non-negative.
func Within(a, b string, tau int) bool {
	return verify.Within(a, b, tau)
}
