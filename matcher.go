package passjoin

import (
	"passjoin/internal/core"
)

// Matcher is the online variant of the similarity join: strings are
// inserted one at a time, in any order, and each insertion reports all
// previously inserted strings within the threshold. Internally it is the
// Pass-Join framework with every length group kept live and probes on both
// sides of the current string's length.
//
// A Matcher is not safe for concurrent use.
type Matcher struct {
	m   *core.Matcher
	cfg config
}

// NewMatcher creates an online matcher for the given threshold.
func NewMatcher(tau int, opts ...Option) (*Matcher, error) {
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return nil, err
	}
	inner := cfg.coreOptions(tau)
	m, err := core.NewMatcher(tau, inner.Selection, inner.Verification, inner.Stats)
	if err != nil {
		return nil, err
	}
	return &Matcher{m: m, cfg: cfg}, nil
}

// Insert adds s and returns the ids (insertion order, 0-based) of all
// previously inserted strings within the threshold, sorted ascending.
func (m *Matcher) Insert(s string) []int {
	ids := m.m.Insert(s)
	m.cfg.stats.fill()
	return toInts(ids)
}

// Query reports the ids of inserted strings within the threshold of s
// without inserting s.
func (m *Matcher) Query(s string) []int {
	ids := m.m.QueryIDs(s)
	m.cfg.stats.fill()
	return toInts(ids)
}

// Len returns the number of inserted strings.
func (m *Matcher) Len() int { return m.m.Len() }

// At returns the id-th inserted string.
func (m *Matcher) At(id int) string { return m.m.String(id) }

func toInts(ids []int32) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}
