package passjoin_test

import (
	"fmt"

	"passjoin"
)

// ExampleQueryTau shows "one index, many thresholds": a single searcher
// partitioned for tau=3 answers any smaller threshold exactly, so serving
// thresholds 0..3 needs one index, not four.
func ExampleQueryTau() {
	corpus := []string{"vldb", "pvldb", "vldbj", "sigmod", "sigmmod", "icde"}
	s, _ := passjoin.NewSearcher(corpus, 3) // partitioned once, for the largest threshold
	for t := 0; t <= 2; t++ {
		fmt.Printf("tau=%d:", t)
		for _, m := range s.Search("vldb", passjoin.QueryTau(t)) {
			fmt.Printf(" %s(%d)", corpus[m.ID], m.Dist)
		}
		fmt.Println()
	}
	// Output:
	// tau=0: vldb(0)
	// tau=1: vldb(0) pvldb(1) vldbj(1)
	// tau=2: vldb(0) pvldb(1) vldbj(1)
}

// ExampleSearcher_SearchSeq shows the streaming form with an early exit:
// the probe stops as soon as the consumer has what it needs, here a
// single exact-match existence check.
func ExampleSearcher_SearchSeq() {
	corpus := []string{"vldb", "pvldb", "vldbj", "sigmod", "icde"}
	s, _ := passjoin.NewSearcher(corpus, 2)
	for m := range s.SearchSeq("vldb", passjoin.QueryTau(0), passjoin.QueryLimit(1)) {
		fmt.Printf("found %q (dist %d)\n", corpus[m.ID], m.Dist)
	}
	// Output:
	// found "vldb" (dist 0)
}

// ExampleIndex shows the one interface all three searchers implement:
// code written against passjoin.Index serves a static, sharded or dynamic
// index interchangeably, per-query options included.
func ExampleIndex() {
	corpus := []string{"vldb", "pvldb", "vldbj", "sigmod", "sigmmod"}
	nearest := func(idx passjoin.Index, q string) string {
		for _, m := range idx.Search(q, passjoin.QueryTopK(1)) {
			doc, _ := idx.Get(m.ID)
			return fmt.Sprintf("%s -> %s (dist %d)", q, doc, m.Dist)
		}
		return q + " -> no match"
	}
	st, _ := passjoin.NewSearcher(corpus, 2)
	sh, _ := passjoin.NewShardedSearcher(corpus, 2, passjoin.WithShards(2))
	dy, _ := passjoin.NewDynamicSearcher(corpus, 2)
	defer dy.Close()
	for _, idx := range []passjoin.Index{st, sh, dy} {
		fmt.Println(nearest(idx, "sigmmod"))
	}
	// Output:
	// sigmmod -> sigmmod (dist 0)
	// sigmmod -> sigmmod (dist 0)
	// sigmmod -> sigmmod (dist 0)
}
