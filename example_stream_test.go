package passjoin_test

import (
	"context"
	"fmt"
	"sort"

	"passjoin"
)

// SelfJoinEachCtx runs a bulk join that can be cancelled mid-flight and
// fans the probe pass out over parallel workers. Pairs arrive in no
// deterministic order under parallelism, so collect and sort when order
// matters; the callback itself always runs on the calling goroutine.
func ExampleSelfJoinEachCtx() {
	strs := []string{"vldb", "pvldb", "sigmod", "sigmmod", "icde", "vldbj"}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // a server would cancel when the client disconnects

	var pairs []passjoin.Pair
	err := passjoin.SelfJoinEachCtx(ctx, strs, 1, func(r, s int) bool {
		pairs = append(pairs, passjoin.Pair{R: r, S: s})
		return true
	}, passjoin.WithParallelism(4))
	if err != nil {
		fmt.Println("join stopped:", err)
		return
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].R != pairs[b].R {
			return pairs[a].R < pairs[b].R
		}
		return pairs[a].S < pairs[b].S
	})
	for _, p := range pairs {
		fmt.Printf("%s ~ %s\n", strs[p.R], strs[p.S])
	}
	// Output:
	// vldb ~ pvldb
	// vldb ~ vldbj
	// sigmod ~ sigmmod
}

// JoinEachCtx is the R×S form: sset is indexed once, then the rset
// strings are probed by parallel workers under the context.
func ExampleJoinEachCtx() {
	queries := []string{"britny spears", "beatles"}
	catalog := []string{"britney spears", "the beatles", "bright eyes"}
	_ = passjoin.JoinEachCtx(context.Background(), queries, catalog, 2, func(r, s int) bool {
		fmt.Printf("%s -> %s\n", queries[r], catalog[s])
		return true
	})
	// Output:
	// britny spears -> britney spears
}
