package passjoin

import (
	"iter"
	"runtime"
	"sort"
	"sync"

	"passjoin/internal/core"
	"passjoin/internal/metrics"
	"passjoin/internal/obs"
)

// ShardedSearcher answers approximate string search queries like Searcher,
// but partitions the corpus across N independent segment indices
// (hash-partitioned by record ID: record i lives in shard i mod N) and
// fans every query out to all shards in parallel, merging the per-shard
// results. Two things follow from the partitioning:
//
//   - Queries are served concurrently without caller-side cloning: each
//     shard keeps a pool of read-only index snapshots, so any number of
//     goroutines may call Search at once.
//   - Each shard's inverted lists are ~1/N the size, so per-query latency
//     drops with shard count on multi-core hardware while the result set
//     stays exactly the same (the partition index is probed per shard and
//     the union of shard answers is the full answer).
//
// Per-query options thread through the fan-out: QueryTau tightens every
// shard's probe, QueryTopK ranks the merged result, QueryLimit caps each
// shard's collection and the merged set.
//
// This is the serving-layer counterpart of the batch joins: cmd/passjoind
// exposes a ShardedSearcher over HTTP.
type ShardedSearcher struct {
	shards []*searchShard
	tau    int
	total  int
}

// searchShard is one hash partition: an immutable frozen index plus a pool
// of query snapshots (frozen arena shared, scratch state owned) so
// concurrent queries never contend on verifier scratch or dedup stamps.
// The shard's mutable build index is discarded at seal time — every pooled
// snapshot probes the same contiguous CSR arena.
type searchShard struct {
	base *core.Matcher
	pool sync.Pool
}

func (sh *searchShard) acquire() *core.Matcher {
	return sh.pool.Get().(*core.Matcher)
}

func (sh *searchShard) release(m *core.Matcher) { sh.pool.Put(m) }

// NewShardedSearcher indexes corpus for threshold-tau queries across
// WithShards(n) partitions (default: GOMAXPROCS). Shards are built in
// parallel; WithStats reports the build counters aggregated over all
// shards (IndexBytes/IndexEntries sum to the total footprint).
func NewShardedSearcher(corpus []string, tau int, opts ...Option) (*ShardedSearcher, error) {
	cfg, err := buildConfig(tau, opts)
	if err != nil {
		return nil, err
	}
	n := cfg.shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(corpus) {
		n = len(corpus)
	}
	if n < 1 {
		n = 1
	}

	ss := &ShardedSearcher{
		shards: make([]*searchShard, n),
		tau:    tau,
		total:  len(corpus),
	}
	parts := make([]*metrics.Stats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var st *metrics.Stats
			if cfg.stats != nil {
				st = &metrics.Stats{}
				parts[s] = st
			}
			m, err := core.NewMatcher(tau, cfg.sel.internal(), cfg.ver.internal(), st)
			if err != nil {
				errs[s] = err
				return
			}
			for i := s; i < len(corpus); i += n {
				m.InsertSilent(corpus[i])
			}
			m.Seal()
			sh := &searchShard{base: m}
			sh.pool.New = func() any { return sh.base.Snapshot() }
			ss.shards[s] = sh
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	cfg.stats.fillMerged(parts)
	return ss, nil
}

// Tau returns the searcher's build threshold — the largest threshold a
// query may ask for.
func (ss *ShardedSearcher) Tau() int { return ss.tau }

// Len returns the corpus size.
func (ss *ShardedSearcher) Len() int { return ss.total }

// NumShards returns the number of index partitions.
func (ss *ShardedSearcher) NumShards() int { return len(ss.shards) }

// At returns the id-th corpus string (ids are positions in the corpus
// slice passed to NewShardedSearcher, same as Searcher). It panics when id
// is out of range; Get is the checked form.
func (ss *ShardedSearcher) At(id int) string {
	n := len(ss.shards)
	return ss.shards[id%n].base.String(id / n)
}

// Get returns the id-th corpus string, reporting false instead of
// panicking when id is out of range.
func (ss *ShardedSearcher) Get(id int) (string, bool) {
	if id < 0 || id >= ss.total {
		return "", false
	}
	return ss.At(id), true
}

// All iterates over every corpus string as (id, doc) pairs in ascending
// id order — the static counterpart of DynamicSearcher.All, so the
// serving layer's document-listing endpoint works over either index
// kind.
func (ss *ShardedSearcher) All() iter.Seq2[int, string] {
	return func(yield func(int, string) bool) {
		for id := 0; id < ss.total; id++ {
			if !yield(id, ss.At(id)) {
				return
			}
		}
	}
}

// Search returns every corpus string within the threshold of q — the
// build threshold, or any smaller per-query threshold given with QueryTau
// — sorted by ascending distance (ties by corpus index). It is safe for
// concurrent use from any number of goroutines.
func (ss *ShardedSearcher) Search(q string, opts ...QueryOption) []Match {
	qc := resolveQuery(ss.tau, opts)
	if qc.empty {
		return nil
	}
	return ss.search(q, qc)
}

// SearchTopK returns the k closest corpus strings to q among those within
// the indexed threshold, sorted by ascending distance (ties by corpus
// index). Fewer than k matches are returned when fewer exist within the
// threshold; k <= 0 returns nil. Safe for concurrent use.
//
// Deprecated: use Search(q, QueryTopK(k)), which composes with the other
// per-query options.
func (ss *ShardedSearcher) SearchTopK(q string, k int) []Match {
	return ss.Search(q, QueryTopK(k))
}

// SearchSeq streams matches for q shard by shard, in no particular order
// (use Search for ranked output; with QueryTopK the ranked matches are
// materialized first and yielded in order). Breaking out of the range
// loop abandons the rest of the probe. The shards are probed sequentially
// — SearchSeq trades the fan-out parallelism for laziness, which wins
// when the consumer exits early. Safe for concurrent use.
func (ss *ShardedSearcher) SearchSeq(q string, opts ...QueryOption) iter.Seq[Match] {
	qc := resolveQuery(ss.tau, opts)
	return func(yield func(Match) bool) {
		if qc.empty {
			return
		}
		if qc.topk > 0 {
			for _, m := range ss.search(q, qc) {
				if !yield(m) {
					return
				}
			}
			return
		}
		n := len(ss.shards)
		remaining := qc.limit // 0 = unlimited
		for si, sh := range ss.shards {
			stopped := false
			delivered := 0
			func() {
				m := sh.acquire()
				// Deferred like Searcher.SearchSeq: a panicking consumer
				// must not strand the snapshot outside the pool.
				defer sh.release(m)
				m.QuerySeq(q, core.QueryOpts{Tau: qc.tau, Limit: remaining, Trace: qc.trace}, func(h core.Hit) bool {
					delivered++
					if !yield(Match{ID: int(h.ID)*n + si, Dist: int(h.Dist)}) {
						stopped = true
						return false
					}
					return true
				})
			}()
			if stopped {
				return
			}
			if qc.limit > 0 {
				remaining -= delivered
				if remaining <= 0 {
					return
				}
			}
		}
	}
}

// search fans q out to every shard, rewrites local ids to global ones
// (global = local*N + shard), and merges. The fan-out runs on goroutines
// only when more than one CPU is available — on a single core the
// parallelism cannot pay for its scheduling overhead, and probing the
// shards in-line on the caller's goroutine is strictly faster.
func (ss *ShardedSearcher) search(q string, qc queryConfig) []Match {
	n := len(ss.shards)
	o := qc.coreOpts()
	parts := make([][]Match, n)
	if n == 1 || runtime.GOMAXPROCS(0) == 1 {
		for s, sh := range ss.shards {
			parts[s] = sh.query(q, n, s, o)
		}
	} else {
		// A trace is single-goroutine state: give each shard its own and
		// merge after the fan-out joins (traced queries only — the extra
		// allocation never touches the untraced path).
		var traces []obs.QueryTrace
		if o.Trace != nil {
			traces = make([]obs.QueryTrace, n)
		}
		var wg sync.WaitGroup
		for s, sh := range ss.shards {
			wg.Add(1)
			go func(s int, sh *searchShard) {
				defer wg.Done()
				so := o
				if traces != nil {
					so.Trace = &traces[s]
				}
				parts[s] = sh.query(q, n, s, so)
			}(s, sh)
		}
		wg.Wait()
		for i := range traces {
			o.Trace.Merge(&traces[i])
		}
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]Match, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return qc.finish(out)
}

// query runs one shard probe on a pooled snapshot and maps local ids back
// to global corpus ids. Distances come from the probe's verification pass;
// no per-hit edit-distance recomputation.
func (sh *searchShard) query(q string, n, s int, o core.QueryOpts) []Match {
	m := sh.acquire()
	hits := m.QueryOpt(q, o)
	out := make([]Match, len(hits))
	for i, h := range hits {
		out[i] = Match{ID: int(h.ID)*n + s, Dist: int(h.Dist)}
	}
	sh.release(m)
	return out
}

// sortMatches orders by ascending distance, ties by corpus index.
func sortMatches(out []Match) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
}
