package passjoin

import (
	"container/heap"
	"fmt"
	"sort"

	"passjoin/internal/core"
)

// matchLess is the result order shared by Search and SearchTopK: ascending
// distance, ties by corpus index.
func matchLess(a, b Match) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// matchMaxHeap is a max-heap on matchLess order — the root is the worst
// match retained, so it is the one displaced when a better match arrives.
type matchMaxHeap []Match

func (h matchMaxHeap) Len() int           { return len(h) }
func (h matchMaxHeap) Less(i, j int) bool { return matchLess(h[j], h[i]) }
func (h matchMaxHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *matchMaxHeap) Push(x any)        { *h = append(*h, x.(Match)) }
func (h *matchMaxHeap) Pop() any          { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// topKMatches returns the k best matches of ms in matchLess order via a
// k-bounded max-heap: O(n log k) instead of the O(n log n) full sort, which
// matters when k is far below the match count. ms is consumed (reordered,
// possibly truncated in place).
func topKMatches(ms []Match, k int) []Match {
	if k <= 0 {
		return nil
	}
	if len(ms) <= k {
		sortMatches(ms)
		return ms
	}
	h := matchMaxHeap(ms[:k])
	heap.Init(&h)
	for _, m := range ms[k:] {
		if matchLess(m, h[0]) {
			h[0] = m
			heap.Fix(&h, 0)
		}
	}
	out := []Match(h)
	sortMatches(out)
	return out
}

// PairDist is a join result annotated with its exact edit distance.
type PairDist struct {
	R, S int
	Dist int
}

// TopK returns the k closest string pairs of strs by edit distance,
// without a caller-supplied threshold. Ties at the cutoff distance are
// broken by (R, S) order, so results are deterministic.
//
// This is the threshold-free variant discussed in the paper's related work
// (top-k similarity joins, Xiao et al. [24]), implemented on top of
// Pass-Join by progressively growing τ: the join runs at τ = 0, 1, 2, …
// until at least k pairs are found, then one more level to collect every
// pair that could still beat the current cutoff. Each run reuses the
// partition index machinery, so small-distance results arrive after only
// cheap rounds.
func TopK(strs []string, k int, opts ...Option) ([]PairDist, error) {
	if k < 0 {
		return nil, fmt.Errorf("passjoin: negative k %d", k)
	}
	cfg, err := buildConfig(0, opts)
	if err != nil {
		return nil, err
	}
	if k == 0 || len(strs) < 2 {
		return nil, nil
	}
	maxLen := 0
	for _, s := range strs {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	totalPairs := len(strs) * (len(strs) - 1) / 2
	if k > totalPairs {
		k = totalPairs
	}
	for tau := 0; ; tau++ {
		o := cfg.coreOptions(tau)
		pairs, err := core.SelfJoin(strs, o)
		if err != nil {
			return nil, err
		}
		// At threshold tau every pair with ed <= tau is present. If we have
		// k of them, the k-th smallest distance is <= tau and no missing
		// pair (all with ed > tau) can displace the chosen ones.
		if len(pairs) >= k || tau >= maxLen {
			out := make([]PairDist, len(pairs))
			for i, p := range pairs {
				out[i] = PairDist{
					R:    int(p.R),
					S:    int(p.S),
					Dist: EditDistance(strs[p.R], strs[p.S]),
				}
			}
			sort.Slice(out, func(a, b int) bool {
				if out[a].Dist != out[b].Dist {
					return out[a].Dist < out[b].Dist
				}
				if out[a].R != out[b].R {
					return out[a].R < out[b].R
				}
				return out[a].S < out[b].S
			})
			if len(out) > k {
				out = out[:k]
			}
			cfg.stats.fill()
			return out, nil
		}
	}
}
